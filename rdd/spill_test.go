package rdd

import (
	"fmt"
	"slices"
	"sync/atomic"
	"testing"

	"hpcmr/engine"
	"hpcmr/internal/spill"
)

// spillJobResult is everything one budgeted run produces: the job
// outputs (sorted) and the accountant's counters.
type spillJobResult struct {
	sums  []Pair[int64, int64]
	lists []Pair[int64, string]
	count int64
	stats spill.Stats
	ok    bool
}

// runSpillJob runs the spill property workload under one budget: a
// cached input re-used by three actions (so cached partitions spill and
// restore across jobs), a keyed sum, and an order-sensitive string
// combiner whose concatenations surface any corruption or reordering a
// spill round trip might introduce.
func runSpillJob(t *testing.T, budget int64, in []Pair[int64, int64], inParts, redP int) spillJobResult {
	t.Helper()
	ctx, err := NewContext(engine.Config{
		Executors: 2, CoresPerExecutor: 2, MemoryBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Stop()
	pairs := Parallelize(ctx, in, inParts).Cache()
	sums, err := ReduceByKey(pairs, func(a, b int64) int64 { return a + b }, redP).Collect()
	if err != nil {
		t.Fatal(err)
	}
	lists, err := CombineByKey(pairs, redP,
		func(v int64) string { return fmt.Sprint(v) },
		func(acc string, v int64) string { return acc + "," + fmt.Sprint(v) },
		func(a, b string) string { return a + ";" + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	count, err := pairs.Count()
	if err != nil {
		t.Fatal(err)
	}
	res := spillJobResult{sums: sortedByKey(sums), lists: sortedByKey(lists), count: count}
	res.stats, res.ok = ctx.Runtime().SpillStats()
	return res
}

// TestSpillRestoreEquivalenceProperty is the memory-budget equivalence
// property: for random budgets — including 0 (unbounded), 1 byte
// (everything spills), and exactly-at-watermark — the workload produces
// byte-identical sorted output, and the accounted stabilized peak never
// exceeds the budget.
func TestSpillRestoreEquivalenceProperty(t *testing.T) {
	// Large enough that nothing ever spills: the accounted run it
	// produces is the reference, and its peak is the true watermark.
	const unboundedish = int64(1) << 40

	for trial, tc := range []struct {
		seed          uint64
		n, keys       int
		inParts, redP int
	}{
		{11, 1200, 16, 4, 8},
		{12, 800, 797, 4, 4}, // near-distinct keys
		{13, 2000, 1, 8, 3},  // single key
		{14, 400, 32, 1, 1},
		{15, 1, 1, 2, 2},
		{16, 900, 64, 5, 7},
	} {
		in := keyedInput(tc.seed, tc.n, tc.keys)

		ref := runSpillJob(t, unboundedish, in, tc.inParts, tc.redP)
		if !ref.ok {
			t.Fatalf("trial %d: reference run has no accountant", trial)
		}
		if ref.stats.Spills != 0 {
			t.Fatalf("trial %d: reference run spilled %d times", trial, ref.stats.Spills)
		}
		watermark := ref.stats.Peak
		if watermark <= 0 {
			t.Fatalf("trial %d: watermark %d", trial, watermark)
		}

		check := func(label string, budget int64, got spillJobResult) {
			if !slices.Equal(got.sums, ref.sums) {
				t.Fatalf("trial %d %s: sums diverge from unbounded run", trial, label)
			}
			if !slices.Equal(got.lists, ref.lists) {
				t.Fatalf("trial %d %s: string combiners diverge from unbounded run", trial, label)
			}
			if got.count != int64(tc.n) {
				t.Fatalf("trial %d %s: count %d, want %d", trial, label, got.count, tc.n)
			}
			if budget > 0 {
				if !got.ok {
					t.Fatalf("trial %d %s: no accountant", trial, label)
				}
				if got.stats.Peak > budget {
					t.Fatalf("trial %d %s: stabilized peak %d exceeds budget %d",
						trial, label, got.stats.Peak, budget)
				}
				if got.stats.EncodeFailures != 0 {
					t.Fatalf("trial %d %s: %d encode failures", trial, label, got.stats.EncodeFailures)
				}
			}
		}

		// Budget 0: the classic unbudgeted store.
		check("budget=0", 0, runSpillJob(t, 0, in, tc.inParts, tc.redP))

		// Exactly at the watermark: fits, so nothing may spill.
		at := runSpillJob(t, watermark, in, tc.inParts, tc.redP)
		check("budget=watermark", watermark, at)
		if at.stats.Spills != 0 {
			t.Fatalf("trial %d: at-watermark run spilled %d times", trial, at.stats.Spills)
		}

		// One byte under: the final admission must force at least one
		// eviction.
		if watermark > 1 {
			under := runSpillJob(t, watermark-1, in, tc.inParts, tc.redP)
			check("budget=watermark-1", watermark-1, under)
			if under.stats.Spills == 0 {
				t.Fatalf("trial %d: watermark-1 run never spilled", trial)
			}
		}

		// One byte total: everything spills, every fetch restores.
		tiny := runSpillJob(t, 1, in, tc.inParts, tc.redP)
		check("budget=1", 1, tiny)
		if tiny.stats.Spills == 0 || tiny.stats.Restores == 0 {
			t.Fatalf("trial %d: 1-byte budget stats %+v", trial, tiny.stats)
		}

		// Random budgets across (0, 2*watermark].
		state := tc.seed * 0x9E3779B97F4A7C15
		for i := 0; i < 3; i++ {
			budget := int64(splitmix64(&state)%uint64(2*watermark)) + 1
			check(fmt.Sprintf("budget=%d", budget), budget,
				runSpillJob(t, budget, in, tc.inParts, tc.redP))
		}
	}
}

// TestSpillCacheRoundTrip pins the cache side specifically: a cached
// RDD whose partitions were evicted must serve later jobs from spill
// files without recomputation.
func TestSpillCacheRoundTrip(t *testing.T) {
	ctx, err := NewContext(engine.Config{
		Executors: 2, CoresPerExecutor: 2, MemoryBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Stop()
	var computes atomic.Int64
	base := Range(ctx, 0, 1000, 4)
	counted := Map(base, func(v int64) int64 { computes.Add(1); return v }).Cache()
	sum := func() int64 {
		s, err := counted.Reduce(func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	first := sum()
	computesAfterFirst := computes.Load()
	if computesAfterFirst != 1000 {
		t.Fatalf("first pass computed %d elements, want 1000", computesAfterFirst)
	}
	if again := sum(); again != first {
		t.Fatalf("cached sum diverged: %d then %d", first, again)
	}
	if got := computes.Load(); got != computesAfterFirst {
		t.Fatalf("second pass recomputed: %d -> %d element computations",
			computesAfterFirst, got)
	}
	st, ok := ctx.Runtime().SpillStats()
	if !ok || st.Spills == 0 || st.Restores == 0 {
		t.Fatalf("expected cache spill traffic, stats %+v (ok=%v)", st, ok)
	}
	// Uncache removes the spill files and frees the accounted bytes.
	counted.Uncache()
	if st, _ := ctx.Runtime().SpillStats(); st.Resident != 0 {
		t.Fatalf("resident %d after Uncache and spilled-everything, want 0", st.Resident)
	}
}
