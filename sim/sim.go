// Package sim is the public facade over the cluster simulator: it
// builds a Hyperion-like simulated machine (compute nodes, InfiniBand
// fabric, Lustre, HDFS-like co-located storage, RAMDisk/SSD devices)
// and runs the paper's MapReduce workloads on it under a selectable
// scheduling policy.
//
// It exists so that downstream users of this module — who cannot import
// internal packages — can reproduce and extend the paper's
// characterization programmatically:
//
//	c, _ := sim.New(sim.Config{Nodes: 100, Device: sim.SSD, Skew: true})
//	res, _ := c.Run(sim.Job{
//	    Benchmark:  sim.GroupBy,
//	    InputBytes: 1.2e12,
//	    CAD:        true,
//	})
//	fmt.Println(res.JobTime, res.Storing)
package sim

import (
	"fmt"

	"hpcmr/fault"
	"hpcmr/internal/cluster"
	"hpcmr/internal/core"
	"hpcmr/internal/dfs"
	"hpcmr/internal/lustre"
	"hpcmr/internal/metrics"
	"hpcmr/internal/sched"
	"hpcmr/internal/workload"
	"hpcmr/trace"
)

// Device selects the node-local storage of the simulated cluster.
type Device string

// Local device choices.
const (
	// RAMDisk backs node-local storage with the 32 GB RAM reservation
	// (the paper's data-centric configuration).
	RAMDisk Device = "ramdisk"
	// SSD backs node-local storage with the SATA SSD behind the OS page
	// cache.
	SSD Device = "ssd"
	// NoDevice models HPC compute nodes without local persistent
	// storage: intermediate data must use the parallel file system.
	NoDevice Device = "none"
)

// Benchmark selects one of the paper's workloads.
type Benchmark string

// Workloads.
const (
	// GroupBy is the shuffle benchmark: intermediate == input.
	GroupBy Benchmark = "groupby"
	// Grep is the scan benchmark with tiny intermediate data.
	Grep Benchmark = "grep"
	// LR is three iterations of logistic regression with the input
	// cached after the first.
	LR Benchmark = "lr"
)

// Policy selects the map-phase scheduling policy.
type Policy string

// Policies.
const (
	// FIFO launches tasks immediately on any free slot.
	FIFO Policy = "fifo"
	// Locality prefers local tasks but never waits.
	Locality Policy = "locality"
	// DelayScheduling waits for locality (Spark's default).
	DelayScheduling Policy = "delay"
	// ELB is the paper's Enhanced Load Balancer.
	ELB Policy = "elb"
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the number of worker nodes (default 100, the paper's
	// Hyperion slice).
	Nodes int
	// CoresPerNode defaults to 16.
	CoresPerNode int
	// Device is the node-local storage (default RAMDisk).
	Device Device
	// WithHDFS mounts the co-located DFS over the node-local devices
	// (required for HDFS-input jobs). Enabled by default when Device is
	// not NoDevice.
	WithHDFS bool
	// Skew enables node performance variation.
	Skew bool
	// SkewSigma overrides the skew spread (default 0.18).
	SkewSigma float64
	// FetchRequestBytes overrides the fabric's request granularity
	// (the paper's network-bottleneck scenario uses 128 KiB).
	FetchRequestBytes float64
	// Seed drives the deterministic skew model (default 1).
	Seed int64
}

// Job describes one simulated MapReduce job.
type Job struct {
	// Benchmark selects the workload (default GroupBy).
	Benchmark Benchmark
	// InputBytes is the input size (default 100 GB).
	InputBytes float64
	// SplitBytes is the per-task split (default 256 MB).
	SplitBytes float64
	// InputFromLustre reads input from the parallel FS instead of the
	// co-located DFS / generated data.
	InputFromLustre bool
	// StoreOnLustre places intermediate data on the parallel FS;
	// SharedFetch selects the direct-read (lock-revoking) fetch path.
	StoreOnLustre bool
	// SharedFetch: see StoreOnLustre.
	SharedFetch bool
	// Policy is the map-phase scheduling policy (default FIFO).
	Policy Policy
	// CAD enables Congestion-Aware Dispatching for the storing phase.
	CAD bool
}

// Result summarizes a simulated job.
type Result struct {
	// JobTime is the virtual execution time in seconds.
	JobTime float64
	// Compute, Storing and Shuffle dissect the job per phase (summed
	// over iterations).
	Compute, Storing, Shuffle float64
	// MapTasks is the number of map tasks executed.
	MapTasks int
	// LocalLaunches counts locality-satisfying map launches.
	LocalLaunches int
	// PerNodeIntermediate is the intermediate bytes per node.
	PerNodeIntermediate []float64
	// StoringTaskSpread is max/min ShuffleMapTask duration.
	StoringTaskSpread float64
}

// Cluster is a simulated machine ready to run jobs. Jobs run
// sequentially and share device state (caches drain between jobs);
// build a fresh Cluster for independent trials.
type Cluster struct {
	eng   *core.Engine
	nodes int
}

// New builds a simulated cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 100
	}
	ccfg := cluster.DefaultConfig(cfg.Nodes)
	if cfg.CoresPerNode > 0 {
		ccfg.CoresPerNode = cfg.CoresPerNode
	}
	switch cfg.Device {
	case RAMDisk, "":
		ccfg.LocalDevice = cluster.RAMDiskDevice
	case SSD:
		ccfg.LocalDevice = cluster.SSDDevice
	case NoDevice:
		ccfg.LocalDevice = cluster.NoLocalDevice
	default:
		return nil, fmt.Errorf("sim: unknown device %q", cfg.Device)
	}
	if cfg.Seed != 0 {
		ccfg.Seed = cfg.Seed
	}
	if cfg.Skew {
		if cfg.SkewSigma > 0 {
			ccfg.Skew.Sigma = cfg.SkewSigma
		}
	} else {
		ccfg.Skew = cluster.SkewConfig{}
	}
	if cfg.FetchRequestBytes > 0 {
		ccfg.Net.RequestSize = cfg.FetchRequestBytes
	}
	c := cluster.New(ccfg)

	var hd *dfs.FS
	if cfg.WithHDFS || (ccfg.LocalDevice != cluster.NoLocalDevice) {
		devs := c.RAMDisks()
		if ccfg.LocalDevice == cluster.SSDDevice {
			devs = c.LocalDevices()
		}
		dcfg := dfs.DefaultConfig()
		dcfg.Replication = 1
		hd = dfs.New(c.Sim, c.Fabric, dcfg, devs)
	}
	lcfg := lustre.DefaultConfig()
	lcfg.AggregateBandwidth = 47e9 * float64(cfg.Nodes) / 100
	lfs := lustre.New(c.Sim, c.Fluid, c.Fabric, lcfg)

	return &Cluster{eng: core.NewEngine(c, hd, lfs), nodes: cfg.Nodes}, nil
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.nodes }

// AliveNodes returns how many simulated nodes have not been crashed by
// an injected fault plan.
func (c *Cluster) AliveNodes() int {
	alive := 0
	for _, n := range c.eng.C.Nodes {
		if n.Alive() {
			alive++
		}
	}
	return alive
}

// InjectFaults arms a deterministic fault plan for the jobs this cluster
// runs. Call it before Run; the same plan on a fresh identically
// configured cluster replays the exact same virtual-time schedule. The
// plan must validate.
func (c *Cluster) InjectFaults(p fault.Plan) error {
	if err := p.Validate(); err != nil {
		return err
	}
	c.eng.Faults = fault.NewInjector(p)
	return nil
}

// Trace attaches a tracer on the cluster's virtual clock and returns it;
// subsequent jobs record job/stage/task/fetch spans plus injected-fault
// events into it. Tracing never perturbs simulated time.
func (c *Cluster) Trace(o trace.Options) *trace.Tracer {
	t := trace.New(c.eng.C.Sim.Now, o)
	c.eng.Tracer = t
	return t
}

// Run simulates one job to completion.
func (c *Cluster) Run(job Job) (*Result, error) {
	if job.InputBytes <= 0 {
		job.InputBytes = 100e9
	}
	if job.SplitBytes <= 0 {
		job.SplitBytes = 256e6
	}
	input := core.InputGenerated
	if job.InputFromLustre {
		input = core.InputLustre
	}

	var spec core.JobSpec
	switch job.Benchmark {
	case GroupBy, "":
		spec = workload.GroupBy(job.InputBytes, job.SplitBytes)
		spec.Input = input
	case Grep:
		if !job.InputFromLustre {
			input = core.InputHDFS
		}
		spec = workload.Grep(job.InputBytes, job.SplitBytes, input)
	case LR:
		if !job.InputFromLustre {
			input = core.InputHDFS
		}
		spec = workload.LogisticRegression(job.InputBytes, job.SplitBytes, input)
	default:
		return nil, fmt.Errorf("sim: unknown benchmark %q", job.Benchmark)
	}
	if job.StoreOnLustre {
		if job.SharedFetch {
			spec.Store = core.StoreLustreShared
		} else {
			spec.Store = core.StoreLustreLocal
		}
	}

	pol := core.Policies{}
	switch job.Policy {
	case FIFO, "":
	case Locality:
		pol.Map = sched.NewLocalityPreferring()
	case DelayScheduling:
		pol.Map = sched.NewDelay(3)
	case ELB:
		pol.Map = sched.NewELB(c.nodes, 0.25)
	default:
		return nil, fmt.Errorf("sim: unknown policy %q", job.Policy)
	}
	if job.CAD {
		pol.Store = sched.NewCAD(sched.NewPinned())
	}

	res, err := c.eng.Run(spec, pol)
	if err != nil {
		return nil, err
	}
	d := res.Dissection()
	out := &Result{
		JobTime:             res.JobTime,
		Compute:             d.Compute,
		Storing:             d.Storing,
		Shuffle:             d.Shuffle,
		PerNodeIntermediate: res.PerNodeIntermediate(),
	}
	for i := range res.Iters {
		it := &res.Iters[i]
		out.MapTasks += len(it.Map.Timeline.Records)
		out.LocalLaunches += it.LocalLaunches
	}
	if len(res.Iters) > 0 {
		tl := res.Iters[0].Store.Timeline
		if len(tl.Records) > 0 {
			out.StoringTaskSpread = tl.Spread()
		}
	}
	return out, nil
}

// Summary formats a result as one line.
func (r *Result) Summary() string {
	return fmt.Sprintf("job=%.2fs compute=%.2fs storing=%.2fs shuffle=%.2fs tasks=%d",
		r.JobTime, r.Compute, r.Storing, r.Shuffle, r.MapTasks)
}

// ImbalanceRatio returns max/mean per-node intermediate data — the
// Fig 12 straggler indicator.
func (r *Result) ImbalanceRatio() float64 {
	if len(r.PerNodeIntermediate) == 0 {
		return 0
	}
	s := metrics.Summarize(r.PerNodeIntermediate)
	if s.Mean == 0 {
		return 0
	}
	return s.Max / s.Mean
}
