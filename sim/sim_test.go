package sim

import (
	"testing"
)

func TestDefaultsAndRun(t *testing.T) {
	c, err := New(Config{Nodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 10 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	res, err := c.Run(Job{InputBytes: 8e9, SplitBytes: 128e6})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobTime <= 0 || res.MapTasks != 63 {
		t.Fatalf("JobTime=%v MapTasks=%d", res.JobTime, res.MapTasks)
	}
	if got := res.Compute + res.Storing + res.Shuffle; got <= 0 {
		t.Fatalf("dissection = %v", got)
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestAllBenchmarksRun(t *testing.T) {
	for _, b := range []Benchmark{GroupBy, Grep, LR} {
		c, err := New(Config{Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(Job{Benchmark: b, InputBytes: 4e9, SplitBytes: 64e6})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.JobTime <= 0 {
			t.Fatalf("%s: JobTime = %v", b, res.JobTime)
		}
	}
}

func TestAllPoliciesRun(t *testing.T) {
	for _, p := range []Policy{FIFO, Locality, DelayScheduling, ELB} {
		c, err := New(Config{Nodes: 8, Skew: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(Job{Benchmark: Grep, InputBytes: 4e9, SplitBytes: 64e6, Policy: p}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestLustrePaths(t *testing.T) {
	c, err := New(Config{Nodes: 8, Device: NoDevice})
	if err != nil {
		t.Fatal(err)
	}
	local, err := c.Run(Job{InputBytes: 8e9, SplitBytes: 128e6, StoreOnLustre: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := New(Config{Nodes: 8, Device: NoDevice})
	shared, err := c2.Run(Job{InputBytes: 8e9, SplitBytes: 128e6, StoreOnLustre: true, SharedFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if shared.JobTime <= local.JobTime {
		t.Fatalf("shared fetch (%v) should be slower than writer-served (%v)",
			shared.JobTime, local.JobTime)
	}
}

func TestCADOption(t *testing.T) {
	c, err := New(Config{Nodes: 8, Device: SSD})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Job{InputBytes: 8e9, CAD: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewImbalance(t *testing.T) {
	c, err := New(Config{Nodes: 16, Skew: true, SkewSigma: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Job{InputBytes: 50e9, SplitBytes: 64e6})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.ImbalanceRatio(); r < 1.1 {
		t.Fatalf("ImbalanceRatio = %v, want skew-induced imbalance", r)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New(Config{Device: "floppy"}); err == nil {
		t.Fatal("bad device accepted")
	}
	c, _ := New(Config{Nodes: 4})
	if _, err := c.Run(Job{Benchmark: "sort"}); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if _, err := c.Run(Job{Policy: "random"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestGrepFromLustre(t *testing.T) {
	c, err := New(Config{Nodes: 8, Device: NoDevice})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Job{
		Benchmark:       Grep,
		InputBytes:      8e9,
		SplitBytes:      64e6,
		InputFromLustre: true,
		StoreOnLustre:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobTime <= 0 {
		t.Fatal("grep from Lustre did not run")
	}
}
