package trace

import (
	"fmt"
	"strings"
	"sync"

	"hpcmr/engine"
	"hpcmr/internal/sched"
)

// SchedAudit adapts a tracer into a scheduler decision auditor: ELB
// pause/resume, CAD throttle adjustments, and delay-scheduling waits
// become CatSched instants named "policy:kind", stamped on the
// tracer's clock (virtual time under the simulator, wall time under
// the real engine). Wire it into engine.Config.SchedAudit or directly
// onto a policy's Audit field.
func SchedAudit(t *Tracer) sched.AuditFunc {
	if t == nil {
		return nil
	}
	return func(ev sched.AuditEvent) {
		detail := ev.Detail
		if len(ev.Loads) > 0 {
			var b strings.Builder
			b.WriteString(detail)
			b.WriteString(" loads=[")
			for i, l := range ev.Loads {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%.4g", l)
			}
			b.WriteByte(']')
			detail = b.String()
		}
		t.Emit(Event{
			TS: t.Now(), Kind: Instant, Cat: CatSched,
			Name: ev.Policy + ":" + ev.Kind,
			Node: ev.Node, Peer: -1, Task: -1,
			Bytes: ev.Value, Detail: detail,
		})
	}
}

// engineListener records real-engine lifecycle events as spans.
type engineListener struct {
	t  *Tracer
	mu sync.Mutex
	// stage start times by name; stages run sequentially per runtime
	// but listeners may serve several runtimes, so keep it keyed.
	starts map[string]float64
}

// EngineListener returns an engine.Listener that records stage and
// task-attempt spans into t. Use a wall-clock tracer (NewWall): task
// timestamps convert through the tracer's epoch.
func EngineListener(t *Tracer) engine.Listener {
	return &engineListener{t: t, starts: map[string]float64{}}
}

func (l *engineListener) OnStageStart(name string, tasks int) {
	l.mu.Lock()
	l.starts[name] = l.t.Now()
	l.mu.Unlock()
}

func (l *engineListener) OnStageEnd(m engine.StageMetrics) {
	dur := m.Duration.Seconds()
	l.mu.Lock()
	start, ok := l.starts[m.Name]
	delete(l.starts, m.Name)
	l.mu.Unlock()
	if !ok {
		// Listener attached mid-stage: anchor on the end time.
		start = l.t.Now() - dur
	}
	name := m.Name
	if !m.Success {
		name += " (failed)"
	}
	l.t.StageSpan(name, m.Tasks, start, dur)
}

func (l *engineListener) OnTaskStart(e engine.TaskEvent) {}

func (l *engineListener) OnTaskEnd(e engine.TaskEvent) {
	detail := ""
	if e.Failed {
		detail = "failed"
	}
	l.t.Emit(Event{
		TS: l.t.Since(e.Start), Dur: e.Duration, Kind: Span, Cat: CatTask,
		Name: "task", Node: e.Executor, Peer: -1, Stage: e.Stage,
		Task: e.TaskID, Attempt: e.Attempt, Bytes: e.ShuffleBytes,
		Records: float64(e.ShuffleRecords), Detail: detail,
	})
}

// OnFetch records real-engine shuffle fetches as CatFetch spans. The
// engine's in-memory shuffle has no per-mapper transfer granularity, so
// the whole fetch is one span with the shuffle ID standing in for the
// stage name and the source peer unknown (-1). The detail tags whether
// the chunks came from the executor's own store or over the network —
// the distributed driver emits one span per class, so a trace shows the
// local/remote shuffle split directly.
func (l *engineListener) OnFetch(e engine.FetchEvent) {
	detail := "local"
	if e.Remote {
		detail = "remote"
	}
	l.t.Emit(Event{
		TS: l.t.Since(e.Start), Dur: e.Duration, Kind: Span, Cat: CatFetch,
		Name: "fetch", Node: e.Executor, Peer: -1,
		Stage: fmt.Sprintf("shuffle-%d", e.Shuffle), Task: e.TaskID,
		Bytes: e.Bytes, Records: float64(e.Records), Detail: detail,
	})
}
