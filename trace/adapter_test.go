package trace

import (
	"testing"
	"time"

	"hpcmr/engine"
)

// TestEngineListenerTagsFetchLocality pins the local/remote tag on
// real-engine fetch spans: the distributed driver publishes one event
// per locality class, and the trace must keep them distinguishable.
func TestEngineListenerTagsFetchLocality(t *testing.T) {
	tr := NewWall(Options{})
	l := EngineListener(tr)
	start := time.Now()
	l.OnFetch(engine.FetchEvent{
		Shuffle: 3, TaskID: 1, Executor: 2, Start: start,
		Duration: 0.5, Records: 10, Bytes: 160,
	})
	l.OnFetch(engine.FetchEvent{
		Shuffle: 3, TaskID: 1, Executor: 2, Start: start,
		Duration: 0.25, Records: 4, Bytes: 64, Remote: true,
	})

	var fetches []Event
	for _, e := range tr.Events() {
		if e.Cat == CatFetch {
			fetches = append(fetches, e)
		}
	}
	if len(fetches) != 2 {
		t.Fatalf("got %d fetch spans, want 2", len(fetches))
	}
	for i, want := range []struct {
		detail  string
		records float64
	}{{"local", 10}, {"remote", 4}} {
		e := fetches[i]
		if e.Detail != want.detail || e.Records != want.records {
			t.Fatalf("fetch %d = detail %q records %v, want %q/%v",
				i, e.Detail, e.Records, want.detail, want.records)
		}
		if e.Stage != "shuffle-3" || e.Name != "fetch" || e.Node != 2 {
			t.Fatalf("fetch %d fields = %+v", i, e)
		}
	}
}
