package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hpcmr/internal/metrics"
)

// PhaseOf classifies a stage name into the paper's three phases:
// "map" (compute), "store" (ShuffleMapTasks writing intermediate
// data), or "shuffle" (reduce-side fetch). The simulator emits
// "map/0"-style names; the real engine's shuffle-map stages are named
// "shufflemap-<id>", and anything unrecognized counts as compute.
func PhaseOf(stage string) string {
	s := strings.ToLower(stage)
	switch {
	case strings.HasPrefix(s, "shufflemap"), strings.HasPrefix(s, "store"):
		return "store"
	case strings.HasPrefix(s, "shuffle"), strings.HasPrefix(s, "fetch"):
		return "shuffle"
	default:
		return "map"
	}
}

// Analysis is the timeline reconstruction of one trace — the paper's
// characterization diagnostics recomputed from captured events alone.
type Analysis struct {
	// Events is the number of analyzed events.
	Events int
	// Jobs lists job spans in start order.
	Jobs []string
	// JobTime is the summed job-span duration (or the trace's overall
	// extent when no job spans were captured).
	JobTime float64
	// Dissection is the per-phase time breakdown from stage spans.
	Dissection metrics.Dissection
	// Nodes is the inferred cluster/executor count.
	Nodes int
	// PerNodeBytes is the per-node intermediate data volume from
	// map-phase task spans (Fig 11/12's skew quantity); when no map
	// task deposited bytes it falls back to store-phase spans.
	PerNodeBytes []float64
	// PerNodeTasks counts task attempts per node.
	PerNodeTasks []int
	// PerNodeBusy is the summed task-span seconds per node.
	PerNodeBusy []float64
	// PerNodeFetch is the summed fetch-span seconds per destination
	// node — where the Fig 7 shuffle-wait pathology shows up.
	PerNodeFetch []float64
	// SkewRatio is max/mean of PerNodeBytes (1 = perfectly balanced).
	SkewRatio float64
	// TaskDur and FetchDur summarize span durations.
	TaskDur, FetchDur metrics.Summary
	// FetchBytes and FetchCount total the shuffle fetches.
	FetchBytes float64
	FetchCount int
	// LocalFetchBytes / RemoteFetchBytes split the fetch volume by
	// path, from spans the adapter tagged "local" (executor's own
	// store, the zero-copy hand-off) or "remote" (network shuffle
	// service). Untagged spans (e.g. simulator fetches) count in
	// neither.
	LocalFetchBytes, RemoteFetchBytes float64
	// LocalFetchRatio is LocalFetchBytes over the tagged total — the
	// locality placement's headline number. Zero when no span is tagged.
	LocalFetchRatio float64
	// Failures counts task spans marked failed.
	Failures int
	// Sched counts decision-audit events by name ("elb:pause", ...).
	Sched map[string]int
	// Stragglers are task spans longer than StragglerThreshold,
	// slowest first (capped at 20).
	Stragglers []Event
	// StragglerThreshold is mult × median task duration.
	StragglerThreshold float64
}

// Analyze reconstructs an Analysis from events. stragglerMult is the
// multiple of the median task duration past which a task counts as a
// straggler; values <= 1 default to 1.5 (the speculative-execution
// threshold the engine itself uses).
func Analyze(events []Event, stragglerMult float64) *Analysis {
	if stragglerMult <= 1 {
		stragglerMult = 1.5
	}
	a := &Analysis{Events: len(events), Sched: map[string]int{}}
	nodes := 0
	minTS, maxEnd := 0.0, 0.0
	first := true

	var taskDurs, fetchDurs []float64
	var tasks []Event
	byPhaseBytes := map[string][]float64{} // phase -> per-node bytes (grown lazily)

	grow := func(sl []float64, n int) []float64 {
		for len(sl) <= n {
			sl = append(sl, 0)
		}
		return sl
	}

	for _, e := range events {
		if first || e.TS < minTS {
			minTS = e.TS
		}
		if first || e.End() > maxEnd {
			maxEnd = e.End()
		}
		first = false
		if e.Node >= nodes {
			nodes = e.Node + 1
		}
		if e.Peer >= nodes {
			nodes = e.Peer + 1
		}
		switch e.Cat {
		case CatJob:
			a.Jobs = append(a.Jobs, e.Name)
			a.JobTime += e.Dur
		case CatStage:
			switch PhaseOf(e.Name) {
			case "store":
				a.Dissection.Storing += e.Dur
			case "shuffle":
				a.Dissection.Shuffle += e.Dur
			default:
				a.Dissection.Compute += e.Dur
			}
		case CatTask:
			taskDurs = append(taskDurs, e.Dur)
			tasks = append(tasks, e)
			if e.Node >= 0 {
				phase := PhaseOf(e.Stage)
				byPhaseBytes[phase] = grow(byPhaseBytes[phase], e.Node)
				byPhaseBytes[phase][e.Node] += e.Bytes
			}
			if strings.Contains(e.Detail, "failed") {
				a.Failures++
			}
		case CatFetch:
			fetchDurs = append(fetchDurs, e.Dur)
			a.FetchBytes += e.Bytes
			a.FetchCount++
			switch e.Detail {
			case "local":
				a.LocalFetchBytes += e.Bytes
			case "remote":
				a.RemoteFetchBytes += e.Bytes
			}
		case CatSched:
			a.Sched[e.Name]++
		}
	}

	a.Nodes = nodes
	a.PerNodeTasks = make([]int, nodes)
	a.PerNodeBusy = make([]float64, nodes)
	a.PerNodeFetch = make([]float64, nodes)
	for _, e := range events {
		if e.Node < 0 {
			continue
		}
		switch e.Cat {
		case CatTask:
			a.PerNodeTasks[e.Node]++
			a.PerNodeBusy[e.Node] += e.Dur
		case CatFetch:
			a.PerNodeFetch[e.Node] += e.Dur
		}
	}

	// Map-phase deposits define the skew; fall back to the storing
	// phase for real-engine traces where bytes surface in shufflemap
	// stages.
	a.PerNodeBytes = grow(byPhaseBytes["map"], nodes-1)
	if sumOf(a.PerNodeBytes) == 0 && sumOf(byPhaseBytes["store"]) > 0 {
		a.PerNodeBytes = grow(byPhaseBytes["store"], nodes-1)
	}
	if mean := metrics.MeanOf(a.PerNodeBytes); mean > 0 {
		a.SkewRatio = metrics.Summarize(a.PerNodeBytes).Max / mean
	}

	if tagged := a.LocalFetchBytes + a.RemoteFetchBytes; tagged > 0 {
		a.LocalFetchRatio = a.LocalFetchBytes / tagged
	}

	a.TaskDur = metrics.Summarize(taskDurs)
	a.FetchDur = metrics.Summarize(fetchDurs)
	if a.JobTime == 0 && !first {
		a.JobTime = maxEnd - minTS
	}

	a.StragglerThreshold = a.TaskDur.Median * stragglerMult
	if a.StragglerThreshold > 0 {
		for _, e := range tasks {
			if e.Dur > a.StragglerThreshold {
				a.Stragglers = append(a.Stragglers, e)
			}
		}
		sort.SliceStable(a.Stragglers, func(i, j int) bool {
			return a.Stragglers[i].Dur > a.Stragglers[j].Dur
		})
		if len(a.Stragglers) > 20 {
			a.Stragglers = a.Stragglers[:20]
		}
	}
	return a
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// WriteSummary renders the analysis as the mrtrace summary report.
func (a *Analysis) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events, %d nodes\n", a.Events, a.Nodes)
	if len(a.Jobs) > 0 {
		fmt.Fprintf(w, "jobs: %s\n", strings.Join(a.Jobs, ", "))
	}
	fmt.Fprintf(w, "job time: %.3f s\n", a.JobTime)
	fmt.Fprintf(w, "dissection: %s\n", a.Dissection)
	if a.TaskDur.N > 0 {
		fmt.Fprintf(w, "tasks: n=%d min=%.4fs median=%.4fs mean=%.4fs p99=%.4fs max=%.4fs failures=%d\n",
			a.TaskDur.N, a.TaskDur.Min, a.TaskDur.Median, a.TaskDur.Mean,
			a.TaskDur.P99, a.TaskDur.Max, a.Failures)
	}
	if s := metrics.Summarize(a.PerNodeBytes); s.N > 0 && s.Max > 0 {
		fmt.Fprintf(w, "intermediate per node: min=%.4g mean=%.4g max=%.4g bytes, skew max/mean=%.2fx\n",
			s.Min, s.Mean, s.Max, a.SkewRatio)
	}
	if a.FetchCount > 0 {
		fmt.Fprintf(w, "shuffle fetches: n=%d bytes=%.4g median=%.4fs p99=%.4fs max=%.4fs\n",
			a.FetchCount, a.FetchBytes, a.FetchDur.Median, a.FetchDur.P99, a.FetchDur.Max)
		if s := metrics.Summarize(a.PerNodeFetch); s.Max > 0 {
			fmt.Fprintf(w, "fetch time per node: min=%.4fs mean=%.4fs max=%.4fs\n",
				s.Min, s.Mean, s.Max)
		}
		if a.LocalFetchBytes+a.RemoteFetchBytes > 0 {
			fmt.Fprintf(w, "shuffle locality: local=%.4g remote=%.4g bytes, local ratio=%.4f\n",
				a.LocalFetchBytes, a.RemoteFetchBytes, a.LocalFetchRatio)
		}
	}
	if len(a.Sched) > 0 {
		names := make([]string, 0, len(a.Sched))
		for n := range a.Sched {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "scheduler decisions:")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, a.Sched[n])
		}
		fmt.Fprintln(w)
	}
	if len(a.Stragglers) > 0 {
		fmt.Fprintf(w, "stragglers (> %.4fs): %d\n", a.StragglerThreshold, len(a.Stragglers))
	}
}

// WriteStragglers renders the top-n straggler report.
func (a *Analysis) WriteStragglers(w io.Writer, n int) {
	if n <= 0 || n > len(a.Stragglers) {
		n = len(a.Stragglers)
	}
	fmt.Fprintf(w, "median task %.4fs, threshold %.4fs, %d stragglers\n",
		a.TaskDur.Median, a.StragglerThreshold, len(a.Stragglers))
	for i := 0; i < n; i++ {
		e := a.Stragglers[i]
		fmt.Fprintf(w, "%10.4fs  %5.1fx  stage=%s task=%d attempt=%d node=%d bytes=%.4g %s\n",
			e.Dur, e.Dur/a.TaskDur.Median, e.Stage, e.Task, e.Attempt, e.Node, e.Bytes, e.Detail)
	}
}
