package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPhaseOf(t *testing.T) {
	cases := map[string]string{
		"map/0":        "map",
		"compute-3":    "map",
		"store/1":      "store",
		"shufflemap-2": "store",
		"shuffle/0":    "shuffle",
		"fetch-7":      "shuffle",
		"":             "map",
	}
	for in, want := range cases {
		if got := PhaseOf(in); got != want {
			t.Errorf("PhaseOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnalyzeReconstructsTimeline(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 10, Kind: Span, Cat: CatJob, Name: "job", Node: -1, Peer: -1, Task: -1},
		{TS: 0, Dur: 4, Kind: Span, Cat: CatStage, Name: "map/0", Node: -1, Task: 4},
		{TS: 4, Dur: 2, Kind: Span, Cat: CatStage, Name: "store/0", Node: -1, Task: 4},
		{TS: 6, Dur: 4, Kind: Span, Cat: CatStage, Name: "shuffle/0", Node: -1, Task: 2},
		// Map tasks: node 0 deposits 300 bytes over two tasks, node 1
		// deposits 100 — skew max/mean = 300/200 = 1.5.
		{TS: 0, Dur: 1, Kind: Span, Cat: CatTask, Stage: "map/0", Task: 0, Node: 0, Bytes: 200},
		{TS: 1, Dur: 1, Kind: Span, Cat: CatTask, Stage: "map/0", Task: 1, Node: 0, Bytes: 100},
		{TS: 0, Dur: 3.9, Kind: Span, Cat: CatTask, Stage: "map/0", Task: 2, Node: 1, Bytes: 100, Detail: "failed"},
		{TS: 0, Dur: 1, Kind: Span, Cat: CatTask, Stage: "map/0", Task: 3, Node: 1, Bytes: 0},
		// Store tasks carry bytes too; map deposits must take precedence.
		{TS: 4, Dur: 1, Kind: Span, Cat: CatTask, Stage: "store/0", Task: 0, Node: 0, Bytes: 999},
		// Fetches land on node 1.
		{TS: 6, Dur: 2, Kind: Span, Cat: CatFetch, Stage: "shuffle/0", Task: 0, Node: 1, Peer: 0, Bytes: 150},
		{TS: 6, Dur: 1, Kind: Span, Cat: CatFetch, Stage: "shuffle/0", Task: 0, Node: 1, Peer: 0, Bytes: 150},
		{TS: 2, Kind: Instant, Cat: CatSched, Name: "elb:pause", Node: 0, Task: -1},
		{TS: 3, Kind: Instant, Cat: CatSched, Name: "elb:resume", Node: 0, Task: -1},
		{TS: 5, Kind: Instant, Cat: CatSched, Name: "cad:throttle", Node: 1, Task: -1},
	}
	a := Analyze(events, 0)

	if a.Events != len(events) {
		t.Fatalf("Events = %d", a.Events)
	}
	if len(a.Jobs) != 1 || a.Jobs[0] != "job" || a.JobTime != 10 {
		t.Fatalf("jobs = %v, time = %v", a.Jobs, a.JobTime)
	}
	if a.Dissection.Compute != 4 || a.Dissection.Storing != 2 || a.Dissection.Shuffle != 4 {
		t.Fatalf("dissection = %+v", a.Dissection)
	}
	if a.Nodes != 2 {
		t.Fatalf("nodes = %d", a.Nodes)
	}
	if a.PerNodeBytes[0] != 300 || a.PerNodeBytes[1] != 100 {
		t.Fatalf("per-node bytes = %v (store bytes must not leak in)", a.PerNodeBytes)
	}
	if math.Abs(a.SkewRatio-1.5) > 1e-12 {
		t.Fatalf("skew = %v, want 1.5", a.SkewRatio)
	}
	if a.PerNodeTasks[0] != 3 || a.PerNodeTasks[1] != 2 {
		t.Fatalf("per-node tasks = %v", a.PerNodeTasks)
	}
	if a.PerNodeFetch[1] != 3 || a.PerNodeFetch[0] != 0 {
		t.Fatalf("per-node fetch = %v", a.PerNodeFetch)
	}
	if a.FetchCount != 2 || a.FetchBytes != 300 {
		t.Fatalf("fetches = %d / %v bytes", a.FetchCount, a.FetchBytes)
	}
	if a.Failures != 1 {
		t.Fatalf("failures = %d", a.Failures)
	}
	if a.Sched["elb:pause"] != 1 || a.Sched["elb:resume"] != 1 || a.Sched["cad:throttle"] != 1 {
		t.Fatalf("sched = %v", a.Sched)
	}
	// Median task dur = 1, threshold 1.5: the 3.9 s task is a straggler.
	if len(a.Stragglers) != 1 || a.Stragglers[0].Dur != 3.9 {
		t.Fatalf("stragglers = %+v (threshold %v)", a.Stragglers, a.StragglerThreshold)
	}

	var buf bytes.Buffer
	a.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{
		"jobs: job", "job time: 10.000", "skew max/mean=1.50x",
		"elb:pause=1", "stragglers", "failures=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	a.WriteStragglers(&buf, 10)
	if !strings.Contains(buf.String(), "task=2") {
		t.Fatalf("straggler report missing task: %s", buf.String())
	}
}

func TestAnalyzeEmptyAndFallbacks(t *testing.T) {
	a := Analyze(nil, 0)
	if a.Events != 0 || a.JobTime != 0 || a.SkewRatio != 0 || len(a.Stragglers) != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	// No job span: JobTime falls back to trace extent. No map bytes:
	// skew falls back to store-phase deposits.
	a = Analyze([]Event{
		{TS: 1, Dur: 2, Kind: Span, Cat: CatTask, Stage: "shufflemap-0", Node: 0, Bytes: 60},
		{TS: 2, Dur: 3, Kind: Span, Cat: CatTask, Stage: "shufflemap-0", Node: 1, Bytes: 20},
	}, 0)
	if a.JobTime != 4 {
		t.Fatalf("fallback job time = %v, want 4 (extent 1..5)", a.JobTime)
	}
	if a.PerNodeBytes[0] != 60 || a.PerNodeBytes[1] != 20 {
		t.Fatalf("store fallback bytes = %v", a.PerNodeBytes)
	}
	if math.Abs(a.SkewRatio-1.5) > 1e-12 {
		t.Fatalf("fallback skew = %v", a.SkewRatio)
	}
}

// TestAnalyzeLocalFetchSplit: "local"/"remote"-tagged fetch spans split
// the shuffle volume and yield the local ratio; untagged spans (the
// simulator's) count in the totals but not the split.
func TestAnalyzeLocalFetchSplit(t *testing.T) {
	a := Analyze([]Event{
		{TS: 0, Dur: 1, Kind: Span, Cat: CatFetch, Node: 0, Bytes: 900, Detail: "local"},
		{TS: 1, Dur: 1, Kind: Span, Cat: CatFetch, Node: 1, Bytes: 300, Detail: "local"},
		{TS: 2, Dur: 1, Kind: Span, Cat: CatFetch, Node: 1, Bytes: 400, Detail: "remote"},
		{TS: 3, Dur: 1, Kind: Span, Cat: CatFetch, Node: 0, Bytes: 50}, // untagged
	}, 0)
	if a.LocalFetchBytes != 1200 || a.RemoteFetchBytes != 400 {
		t.Fatalf("split = %v local / %v remote, want 1200/400", a.LocalFetchBytes, a.RemoteFetchBytes)
	}
	if math.Abs(a.LocalFetchRatio-0.75) > 1e-12 {
		t.Fatalf("local ratio = %v, want 0.75", a.LocalFetchRatio)
	}
	if a.FetchBytes != 1650 {
		t.Fatalf("fetch bytes = %v, want 1650", a.FetchBytes)
	}
	var buf bytes.Buffer
	a.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "shuffle locality: local=1200 remote=400 bytes, local ratio=0.7500") {
		t.Fatalf("summary missing locality line:\n%s", buf.String())
	}

	// No tagged spans: no ratio, no summary line.
	a = Analyze([]Event{{TS: 0, Dur: 1, Kind: Span, Cat: CatFetch, Node: 0, Bytes: 50}}, 0)
	if a.LocalFetchRatio != 0 {
		t.Fatalf("untagged-only ratio = %v, want 0", a.LocalFetchRatio)
	}
	buf.Reset()
	a.WriteSummary(&buf)
	if strings.Contains(buf.String(), "shuffle locality") {
		t.Fatalf("summary has locality line with no tagged spans:\n%s", buf.String())
	}
}
