package trace

import "testing"

// BenchmarkTaskSpanDisabled measures the disabled (nil tracer) hot
// path — the cost every task pays when tracing is off. Must stay at
// 0 allocs/op; CI's overhead gate builds on this.
func BenchmarkTaskSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.TaskSpan("map/0", i, 0, 3, 1.0, 0.01, 64e6, "")
	}
}

func BenchmarkTaskSpanEnabled(b *testing.B) {
	now := 0.0
	tr := New(func() float64 { return now }, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TaskSpan("map/0", i, 0, i&7, 1.0, 0.01, 64e6, "")
	}
}

func BenchmarkEmitParallel(b *testing.B) {
	tr := New(func() float64 { return 0 }, Options{Shards: 16})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		node := 0
		for pb.Next() {
			node++
			tr.FetchSpan("shuffle/0", 1, node&15, (node+1)&15, 1.0, 0.01, 1e6, 1024)
		}
	})
}
