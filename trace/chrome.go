package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace_event format (the "JSON Trace Format" consumed by
// chrome://tracing and Perfetto): a {"traceEvents": [...]} document
// whose entries carry name/cat/ph/ts/pid/tid, with ts and dur in
// microseconds. Spans map to complete events (ph "X"), decisions to
// thread-scoped instants (ph "i"), and per-node rows are threads of a
// single process, named via metadata events (ph "M").

// chromeEvent is one trace_event entry. Args round-trips the Event
// fields the base entry cannot carry.
type chromeEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat"`
	Ph    string      `json:"ph"`
	TS    float64     `json:"ts"`
	Dur   float64     `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name    string  `json:"name,omitempty"` // thread_name metadata payload
	Peer    *int    `json:"peer,omitempty"`
	Stage   string  `json:"stage,omitempty"`
	Task    *int    `json:"task,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Bytes   float64 `json:"bytes,omitempty"`
	Records float64 `json:"records,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// tid maps a node ID onto a Chrome thread ID; the driver (-1) becomes
// thread 0 and node n thread n+1.
func tid(node int) int { return node + 1 }

// WriteChrome emits events as a Chrome trace_event JSON document with
// ts sorted non-decreasing (metadata first).
func WriteChrome(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	doc := chromeDoc{DisplayTimeUnit: "ms"}
	// Name the process and every node row that appears in the trace.
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: &chromeArgs{Name: "hpcmr"},
	})
	seen := map[int]bool{}
	for _, e := range sorted {
		if seen[e.Node] {
			continue
		}
		seen[e.Node] = true
		name := fmt.Sprintf("node %d", e.Node)
		if e.Node < 0 {
			name = "driver"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid(e.Node),
			Args: &chromeArgs{Name: name},
		})
	}

	for _, e := range sorted {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat.String(),
			TS:   e.TS * 1e6,
			Pid:  1,
			Tid:  tid(e.Node),
		}
		args := chromeArgs{
			Stage: e.Stage, Attempt: e.Attempt, Bytes: e.Bytes,
			Records: e.Records, Detail: e.Detail,
		}
		if e.Task >= 0 || e.Cat == CatStage {
			task := e.Task
			args.Task = &task
		}
		if e.Peer >= 0 {
			peer := e.Peer
			args.Peer = &peer
		}
		ce.Args = &args
		if e.Kind == Instant {
			ce.Ph = "i"
			ce.Scope = "t"
		} else {
			ce.Ph = "X"
			ce.Dur = e.Dur * 1e6
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadChrome parses a Chrome trace_event document (object or bare
// array) previously written by WriteChrome back into events; metadata
// entries are skipped.
func ReadChrome(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var entries []chromeEvent
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		entries = doc.TraceEvents
	} else if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("trace: not a Chrome trace document: %w", err)
	}
	var out []Event
	for _, ce := range entries {
		if ce.Ph == "M" {
			continue
		}
		e := Event{
			TS:   ce.TS / 1e6,
			Dur:  ce.Dur / 1e6,
			Cat:  parseCategory(ce.Cat),
			Name: ce.Name,
			Node: ce.Tid - 1,
			Peer: -1,
			Task: -1,
		}
		if ce.Ph == "i" || ce.Ph == "I" {
			e.Kind = Instant
		}
		if ce.Args != nil {
			e.Stage = ce.Args.Stage
			e.Attempt = ce.Args.Attempt
			e.Bytes = ce.Args.Bytes
			e.Records = ce.Args.Records
			e.Detail = ce.Args.Detail
			if ce.Args.Task != nil {
				e.Task = *ce.Args.Task
			}
			if ce.Args.Peer != nil {
				e.Peer = *ce.Args.Peer
			}
		}
		out = append(out, e)
	}
	return out, nil
}
