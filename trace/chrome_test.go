package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// fixtureEvents is a small deterministic trace exercising every event
// shape the exporter handles: job/stage spans on the driver row, task
// and fetch spans on node rows, and a scheduler instant.
func fixtureEvents() []Event {
	return []Event{
		{TS: 0, Dur: 9, Kind: Span, Cat: CatJob, Name: "groupby-4.0GB", Node: -1, Peer: -1, Task: -1},
		{TS: 0, Dur: 4, Kind: Span, Cat: CatStage, Name: "map/0", Node: -1, Peer: -1, Task: 16},
		{TS: 0.25, Dur: 1.5, Kind: Span, Cat: CatTask, Name: "task", Node: 0, Peer: -1,
			Stage: "map/0", Task: 3, Bytes: 128e6},
		{TS: 0.5, Dur: 2.5, Kind: Span, Cat: CatTask, Name: "task", Node: 1, Peer: -1,
			Stage: "map/0", Task: 4, Attempt: 1, Bytes: 128e6, Detail: "failed"},
		{TS: 2, Kind: Instant, Cat: CatSched, Name: "elb:pause", Node: 1, Peer: -1, Task: -1,
			Bytes: 384e6, Detail: "load=3.84e8 avg=2.56e8 threshold=0.05 t=2.000"},
		{TS: 5, Dur: 0.75, Kind: Span, Cat: CatFetch, Name: "fetch", Node: 2, Peer: 0,
			Stage: "shuffle/0", Task: 2, Bytes: 64e6},
	}
}

// TestChromeSchema validates the exported document against the
// trace_event contract chrome://tracing and Perfetto rely on: required
// keys on every entry, known phase codes, microsecond ts monotonic
// non-decreasing over non-metadata events, durations on complete
// events, and a scope on instants.
func TestChromeSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported document is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	lastTS := math.Inf(-1)
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, e)
			}
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			continue // metadata carries no timeline position
		case "X":
			if _, ok := e["dur"]; !ok && e["ts"] != float64(0) {
				// dur is omitempty; zero-length spans may drop it.
				if d, _ := e["dur"].(float64); d < 0 {
					t.Fatalf("event %d: negative dur", i)
				}
			}
		case "i":
			if s, _ := e["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Fatalf("event %d: instant without a valid scope: %v", i, e)
			}
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ph)
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event %d: ts is not a number", i)
		}
		if ts < lastTS {
			t.Fatalf("event %d: ts %v decreases below %v", i, ts, lastTS)
		}
		lastTS = ts
	}
}

// TestChromeGolden pins the exported bytes so schema drift is caught
// in review. Regenerate with: go test ./trace -run TestChromeGolden -update
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden %s\ngot:  %s\nwant: %s",
			path, buf.Bytes(), want)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	in := fixtureEvents()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip kept %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		w := in[i]
		if e.Kind != w.Kind || e.Cat != w.Cat || e.Name != w.Name ||
			e.Node != w.Node || e.Peer != w.Peer || e.Stage != w.Stage ||
			e.Task != w.Task || e.Attempt != w.Attempt || e.Detail != w.Detail {
			t.Fatalf("event %d diverged:\nin  %+v\nout %+v", i, w, e)
		}
		if math.Abs(e.TS-w.TS) > 1e-9 || math.Abs(e.Dur-w.Dur) > 1e-9 ||
			math.Abs(e.Bytes-w.Bytes) > 1e-6 {
			t.Fatalf("event %d numeric drift:\nin  %+v\nout %+v", i, w, e)
		}
	}
	// Read() must sniff the Chrome format too.
	sniffed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sniffed) != len(in) {
		t.Fatal("Read() failed to sniff Chrome document")
	}
}
