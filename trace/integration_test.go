package trace_test

// End-to-end check of the acceptance criterion: a traced fig7-style
// shuffle run (GroupBy, skewed nodes, ELB maps + CAD storing) must
// capture task-attempt spans, shuffle-fetch spans, and scheduler
// decision events — and Analyze must reproduce the simulator's own
// per-node intermediate-data skew and phase dissection from the
// captured events alone.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hpcmr/internal/cluster"
	"hpcmr/internal/core"
	"hpcmr/internal/sched"
	"hpcmr/internal/workload"
	"hpcmr/trace"
)

func runTracedGroupBy(t *testing.T) (*trace.Tracer, *core.Result) {
	t.Helper()
	const nodes = 8
	cfg := cluster.DefaultConfig(nodes)
	cfg.LocalDevice = cluster.RAMDiskDevice
	cfg.Skew = cluster.SkewConfig{Sigma: 0.5, DriftAmplitude: 0.10, DriftPeriod: 600}
	cfg.Seed = 1
	c := cluster.New(cfg)
	eng := core.NewEngine(c, nil, nil)

	tr := trace.New(c.Sim.Now, trace.Options{})
	eng.Tracer = tr
	audit := trace.SchedAudit(tr)

	elb := sched.NewELB(nodes, 0.05)
	elb.Audit = audit
	cad := sched.NewCAD(sched.NewPinned())
	cad.Audit = audit

	res, err := eng.Run(workload.GroupBy(4*workload.GB, 64*workload.MB),
		core.Policies{Map: elb, Store: cad})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestSimulatorTraceCapturesAllSpanKinds(t *testing.T) {
	tr, res := runTracedGroupBy(t)
	events := tr.Events()
	if tr.Drops() != 0 {
		t.Fatalf("default capacity dropped %d events", tr.Drops())
	}

	counts := map[trace.Category]int{}
	mapTasks, fetches, elbDecisions := 0, 0, 0
	for _, e := range events {
		counts[e.Cat]++
		switch e.Cat {
		case trace.CatTask:
			if strings.HasPrefix(e.Stage, "map/") {
				mapTasks++
			}
		case trace.CatFetch:
			fetches++
			if e.Peer < 0 || e.Node < 0 {
				t.Fatalf("fetch span without src/dst: %+v", e)
			}
		case trace.CatSched:
			if strings.HasPrefix(e.Name, "elb:") {
				elbDecisions++
			}
		}
	}
	if counts[trace.CatJob] != 1 {
		t.Fatalf("job spans = %d", counts[trace.CatJob])
	}
	if counts[trace.CatStage] != 3 {
		t.Fatalf("stage spans = %d, want map+store+shuffle", counts[trace.CatStage])
	}
	if want := res.Spec.NumMapTasks(); mapTasks != want {
		t.Fatalf("map task spans = %d, want %d", mapTasks, want)
	}
	if fetches == 0 {
		t.Fatal("no shuffle-fetch spans captured")
	}
	if elbDecisions == 0 {
		t.Fatal("no ELB decision events despite 0.05 threshold and sigma-0.5 skew")
	}
	// Virtual timestamps must stay within the job's time extent.
	for _, e := range events {
		if e.TS < 0 || e.End() > res.JobTime+1e-9 {
			t.Fatalf("event outside job extent [0, %v]: %+v", res.JobTime, e)
		}
	}
}

func TestAnalyzeMatchesSimulatorResult(t *testing.T) {
	tr, res := runTracedGroupBy(t)
	a := trace.Analyze(tr.Events(), 0)

	if math.Abs(a.JobTime-res.JobTime) > 1e-9 {
		t.Fatalf("job time from trace %v != simulator %v", a.JobTime, res.JobTime)
	}
	wantD := res.Dissection()
	if math.Abs(a.Dissection.Compute-wantD.Compute) > 1e-9 ||
		math.Abs(a.Dissection.Storing-wantD.Storing) > 1e-9 ||
		math.Abs(a.Dissection.Shuffle-wantD.Shuffle) > 1e-9 {
		t.Fatalf("dissection from trace %+v != simulator %+v", a.Dissection, wantD)
	}
	wantB := res.PerNodeIntermediate()
	if len(a.PerNodeBytes) != len(wantB) {
		t.Fatalf("per-node bytes length %d != %d", len(a.PerNodeBytes), len(wantB))
	}
	for n := range wantB {
		if math.Abs(a.PerNodeBytes[n]-wantB[n]) > 1e-6 {
			t.Fatalf("node %d intermediate bytes %v != simulator %v",
				n, a.PerNodeBytes[n], wantB[n])
		}
	}
	if a.SkewRatio <= 1 {
		t.Fatalf("sigma-0.5 skew produced SkewRatio %v, want > 1", a.SkewRatio)
	}
	wantTasks := res.PerNodeTasks()
	for n := range wantTasks {
		if a.PerNodeTasks[n] < wantTasks[n] {
			// Trace also counts store/shuffle tasks, so per-node totals
			// must be at least the map-task counts.
			t.Fatalf("node %d task count %d < map tasks %d",
				n, a.PerNodeTasks[n], wantTasks[n])
		}
	}
}

func TestTracedRunSurvivesExportRoundTrip(t *testing.T) {
	tr, res := runTracedGroupBy(t)
	direct := trace.Analyze(tr.Events(), 0)

	for _, write := range []struct {
		name string
		fn   func(*bytes.Buffer) error
	}{
		{"chrome", func(b *bytes.Buffer) error { return trace.WriteChrome(b, tr.Events()) }},
		{"jsonl", func(b *bytes.Buffer) error { return trace.WriteJSONL(b, tr.Events()) }},
	} {
		var buf bytes.Buffer
		if err := write.fn(&buf); err != nil {
			t.Fatalf("%s: %v", write.name, err)
		}
		loaded, err := trace.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", write.name, err)
		}
		a := trace.Analyze(loaded, 0)
		if a.Events != direct.Events {
			t.Fatalf("%s: %d events after round trip, want %d", write.name, a.Events, direct.Events)
		}
		if math.Abs(a.JobTime-res.JobTime) > 1e-6*res.JobTime {
			t.Fatalf("%s: job time %v != %v", write.name, a.JobTime, res.JobTime)
		}
		for n := range direct.PerNodeBytes {
			if math.Abs(a.PerNodeBytes[n]-direct.PerNodeBytes[n]) > 1 {
				t.Fatalf("%s: node %d bytes drifted: %v != %v",
					write.name, n, a.PerNodeBytes[n], direct.PerNodeBytes[n])
			}
		}
	}
}

// TestTracerDoesNotPerturbSimulation pins the golden-fixture guarantee:
// the same job with and without a tracer must produce identical virtual
// results — tracing is observation-only.
func TestTracerDoesNotPerturbSimulation(t *testing.T) {
	run := func(traced bool) *core.Result {
		cfg := cluster.DefaultConfig(8)
		cfg.LocalDevice = cluster.RAMDiskDevice
		cfg.Skew = cluster.SkewConfig{Sigma: 0.5, DriftAmplitude: 0.10, DriftPeriod: 600}
		cfg.Seed = 1
		c := cluster.New(cfg)
		eng := core.NewEngine(c, nil, nil)
		if traced {
			eng.Tracer = trace.New(c.Sim.Now, trace.Options{})
		}
		res, err := eng.Run(workload.GroupBy(2*workload.GB, 64*workload.MB), core.Policies{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.JobTime != traced.JobTime {
		t.Fatalf("tracing changed the simulation: %v != %v", traced.JobTime, plain.JobTime)
	}
	pb, tb := plain.PerNodeIntermediate(), traced.PerNodeIntermediate()
	for n := range pb {
		if pb[n] != tb[n] {
			t.Fatalf("tracing changed node %d intermediate bytes", n)
		}
	}
}
