package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the wire form of Event: one JSON object per line, with
// enums as strings so traces stay greppable and stable across binary
// versions.
type jsonEvent struct {
	TS      float64 `json:"ts"`
	Dur     float64 `json:"dur,omitempty"`
	Kind    string  `json:"kind"`
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	Node    int     `json:"node"`
	Peer    int     `json:"peer"`
	Stage   string  `json:"stage,omitempty"`
	Task    int     `json:"task"`
	Attempt int     `json:"attempt,omitempty"`
	Bytes   float64 `json:"bytes,omitempty"`
	Records float64 `json:"records,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

func toWire(e Event) jsonEvent {
	return jsonEvent{
		TS: e.TS, Dur: e.Dur, Kind: e.Kind.String(), Cat: e.Cat.String(),
		Name: e.Name, Node: e.Node, Peer: e.Peer, Stage: e.Stage,
		Task: e.Task, Attempt: e.Attempt, Bytes: e.Bytes, Records: e.Records,
		Detail: e.Detail,
	}
}

func fromWire(j jsonEvent) Event {
	k := Span
	if j.Kind == "instant" {
		k = Instant
	}
	return Event{
		TS: j.TS, Dur: j.Dur, Kind: k, Cat: parseCategory(j.Cat),
		Name: j.Name, Node: j.Node, Peer: j.Peer, Stage: j.Stage,
		Task: j.Task, Attempt: j.Attempt, Bytes: j.Bytes, Records: j.Records,
		Detail: j.Detail,
	}
}

// WriteJSONL emits events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(toWire(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace; blank lines are skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var j jsonEvent
		if err := json.Unmarshal(b, &j); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, fromWire(j))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Read parses a trace in either supported format, sniffing between a
// Chrome trace_event document (JSON array, or object with a
// "traceEvents" key) and JSONL.
func Read(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, nil
	}
	head := trimmed
	if len(head) > 256 {
		head = head[:256]
	}
	if trimmed[0] == '[' || bytes.Contains(head, []byte(`"traceEvents"`)) {
		return ReadChrome(bytes.NewReader(trimmed))
	}
	return ReadJSONL(bytes.NewReader(trimmed))
}
