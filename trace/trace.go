// Package trace is the structured tracing and timeline-analysis
// subsystem. It captures per-task, per-node execution spans and
// scheduler decision events from both execution layers — the real
// multi-executor engine (wall clock) and the discrete-event simulator
// (virtual clock) — into sharded in-memory ring buffers, exports them
// as Chrome trace_event JSON (loadable in Perfetto or chrome://tracing)
// or JSONL, and reconstructs the paper's characterization diagnostics
// (per-node intermediate-data skew, phase dissection, shuffle-fetch
// breakdown, stragglers) from a trace alone.
//
// The span model is hierarchical:
//
//	job   — one simulated or real job (CatJob)
//	stage — one phase/stage of the job (CatStage)
//	task  — one task attempt on one node (CatTask)
//	fetch — one shuffle fetch from a mapper node to a reducer (CatFetch)
//
// plus instantaneous scheduler decision-audit events (CatSched): ELB
// pause/resume with per-node load snapshots, CAD congestion throttle
// adjustments, and delay-scheduling locality waits.
//
// Capture is concurrency-safe and cheap: events go into fixed-capacity
// per-shard rings guarded by per-shard mutexes (executors on different
// shards never contend), and a disabled tracer — a nil *Tracer — costs
// one branch and zero allocations on the task hot path.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Kind distinguishes spans from instantaneous events.
type Kind uint8

// Event kinds.
const (
	// Span is a complete interval: [TS, TS+Dur].
	Span Kind = iota
	// Instant is a point event at TS.
	Instant
)

func (k Kind) String() string {
	if k == Instant {
		return "instant"
	}
	return "span"
}

// Category places an event in the span hierarchy.
type Category uint8

// Event categories.
const (
	// CatJob spans one whole job.
	CatJob Category = iota
	// CatStage spans one stage/phase.
	CatStage
	// CatTask spans one task attempt.
	CatTask
	// CatFetch spans one shuffle fetch (Peer = source node).
	CatFetch
	// CatSched marks a scheduler decision-audit event.
	CatSched
	// CatFault marks an injected fault or a recovery decision.
	CatFault
)

func (c Category) String() string {
	switch c {
	case CatStage:
		return "stage"
	case CatTask:
		return "task"
	case CatFetch:
		return "fetch"
	case CatSched:
		return "sched"
	case CatFault:
		return "fault"
	default:
		return "job"
	}
}

// parseCategory inverts Category.String.
func parseCategory(s string) Category {
	switch s {
	case "stage":
		return CatStage
	case "task":
		return CatTask
	case "fetch":
		return CatFetch
	case "sched":
		return CatSched
	case "fault":
		return CatFault
	default:
		return CatJob
	}
}

// Event is one captured trace record. Times are float64 seconds on the
// tracer's clock: monotonic wall seconds since tracer creation for real
// runs, virtual seconds for simulated runs.
type Event struct {
	// TS is the event's start time; Dur its length (0 for instants).
	TS, Dur float64
	// Kind is Span or Instant.
	Kind Kind
	// Cat is the event's place in the span hierarchy.
	Cat Category
	// Name labels the event: the job or stage name, "task", "fetch", or
	// the decision "policy:kind".
	Name string
	// Node is the executor/node the event happened on (-1 = driver).
	Node int
	// Peer is the far-end node of a fetch (the mapper being read); -1
	// when not applicable.
	Peer int
	// Stage is the enclosing stage name for task and fetch spans.
	Stage string
	// Task is the task index within its stage; -1 when not applicable.
	Task int
	// Attempt numbers retries of the same task.
	Attempt int
	// Bytes is the data volume the event accounts for: intermediate
	// bytes deposited (tasks), bytes fetched (fetches), or the decision
	// value (sched events: node load, in-flight limit, or wait seconds).
	Bytes float64
	// Records is the record count behind Bytes, where known (fetch
	// spans; task spans of shuffle map stages). Zero means unknown —
	// record counts only became a traced dimension with shuffle-volume
	// accounting.
	Records float64
	// Detail is a free-form elaboration (failure notes, load snapshots).
	Detail string
}

// End returns the event's end time.
func (e Event) End() float64 { return e.TS + e.Dur }

// Options sizes a Tracer.
type Options struct {
	// Shards is the number of independent ring buffers; events shard by
	// node ID. 0 means 8.
	Shards int
	// ShardCapacity is the event capacity of each ring; when a ring is
	// full the oldest events are overwritten and counted as dropped.
	// 0 means 32768.
	ShardCapacity int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.ShardCapacity <= 0 {
		o.ShardCapacity = 32768
	}
	return o
}

// shard is one ring buffer. next counts writes forever; the ring holds
// the last len(buf) of them.
type shard struct {
	mu   sync.Mutex
	buf  []Event
	next int
	_    [64]byte // keep neighboring shards off one cache line
}

// Tracer captures events against a clock. A nil *Tracer is a valid,
// disabled tracer: every method is a cheap no-op, so call sites need no
// enabled-checks on the hot path.
type Tracer struct {
	clock  func() float64
	epoch  time.Time
	shards []shard
}

// New returns a tracer reading time from clock — pass the simulator's
// Sim.Now for virtual-time tracing, or any monotonic seconds source.
func New(clock func() float64, o Options) *Tracer {
	o = o.withDefaults()
	t := &Tracer{clock: clock, shards: make([]shard, o.Shards)}
	for i := range t.shards {
		t.shards[i].buf = make([]Event, o.ShardCapacity)
	}
	return t
}

// NewWall returns a tracer on the monotonic wall clock, with its epoch
// (time zero) at the call.
func NewWall(o Options) *Tracer {
	epoch := time.Now()
	t := New(func() float64 { return time.Since(epoch).Seconds() }, o)
	t.epoch = epoch
	return t
}

// Enabled reports whether the tracer captures events.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current time on the tracer's clock (0 when disabled).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Since converts an absolute wall timestamp to the tracer's clock; it
// is meaningful only for tracers built with NewWall.
func (t *Tracer) Since(tm time.Time) float64 {
	if t == nil {
		return 0
	}
	return tm.Sub(t.epoch).Seconds()
}

// Emit records one event. Safe for concurrent use; events for different
// shards (≈ different executors) do not contend.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	idx := 0
	if e.Node > 0 {
		idx = e.Node % len(t.shards)
	}
	s := &t.shards[idx]
	s.mu.Lock()
	s.buf[s.next%len(s.buf)] = e
	s.next++
	s.mu.Unlock()
}

// JobSpan records a completed job.
func (t *Tracer) JobSpan(name string, start, dur float64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: start, Dur: dur, Kind: Span, Cat: CatJob, Name: name,
		Node: -1, Peer: -1, Task: -1})
}

// StageSpan records a completed stage of n tasks.
func (t *Tracer) StageSpan(name string, tasks int, start, dur float64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: start, Dur: dur, Kind: Span, Cat: CatStage, Name: name,
		Node: -1, Peer: -1, Task: tasks})
}

// TaskSpan records one task attempt.
func (t *Tracer) TaskSpan(stage string, task, attempt, node int, start, dur, bytes float64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: start, Dur: dur, Kind: Span, Cat: CatTask, Name: "task",
		Node: node, Peer: -1, Stage: stage, Task: task, Attempt: attempt,
		Bytes: bytes, Detail: detail})
}

// FetchSpan records one shuffle fetch of bytes (and, where counted,
// records — pass 0 when unknown) from src into dst.
func (t *Tracer) FetchSpan(stage string, task, src, dst int, start, dur, bytes, records float64) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: start, Dur: dur, Kind: Span, Cat: CatFetch, Name: "fetch",
		Node: dst, Peer: src, Stage: stage, Task: task, Bytes: bytes, Records: records})
}

// InstantEvent records a point event at the current clock reading.
func (t *Tracer) InstantEvent(cat Category, name string, node int, value float64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{TS: t.clock(), Kind: Instant, Cat: cat, Name: name,
		Node: node, Peer: -1, Task: -1, Bytes: value, Detail: detail})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if s.next < len(s.buf) {
			n += s.next
		} else {
			n += len(s.buf)
		}
		s.mu.Unlock()
	}
	return n
}

// Drops returns how many events were overwritten by ring wraparound.
func (t *Tracer) Drops() int64 {
	if t == nil {
		return 0
	}
	var d int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if over := s.next - len(s.buf); over > 0 {
			d += int64(over)
		}
		s.mu.Unlock()
	}
	return d
}

// Events returns a snapshot of all retained events, oldest-first per
// shard, merged and sorted by start time (stable, so same-instant
// events keep shard order).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if s.next < len(s.buf) {
			out = append(out, s.buf[:s.next]...)
		} else {
			head := s.next % len(s.buf)
			out = append(out, s.buf[head:]...)
			out = append(out, s.buf[:head]...)
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
