package trace

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{})
	tr.TaskSpan("s", 0, 0, 0, 0, 1, 0, "")
	tr.FetchSpan("s", 0, 1, 2, 0, 1, 10, 3)
	tr.StageSpan("s", 4, 0, 1)
	tr.JobSpan("j", 0, 1)
	tr.InstantEvent(CatSched, "elb:pause", 0, 1, "")
	if tr.Len() != 0 || tr.Drops() != 0 || tr.Events() != nil || tr.Now() != 0 {
		t.Fatal("nil tracer retained state")
	}
}

// TestDisabledZeroAlloc pins the acceptance criterion: with tracing
// disabled (nil tracer), the capture calls on the task hot path
// allocate nothing. The enabled path is also allocation-free — events
// are copied by value into preallocated rings.
func TestDisabledZeroAlloc(t *testing.T) {
	var disabled *Tracer
	if n := testing.AllocsPerRun(200, func() {
		disabled.TaskSpan("stage", 3, 0, 2, 1.0, 0.5, 4096, "")
		disabled.FetchSpan("stage", 3, 1, 2, 1.0, 0.5, 4096, 0)
	}); n != 0 {
		t.Fatalf("disabled tracer allocates %v per op on the hot path", n)
	}
	enabled := New(func() float64 { return 0 }, Options{Shards: 2, ShardCapacity: 64})
	if n := testing.AllocsPerRun(200, func() {
		enabled.TaskSpan("stage", 3, 0, 2, 1.0, 0.5, 4096, "")
	}); n != 0 {
		t.Fatalf("enabled tracer allocates %v per emit", n)
	}
}

func TestVirtualClock(t *testing.T) {
	now := 0.0
	tr := New(func() float64 { return now }, Options{})
	now = 42.5
	if got := tr.Now(); got != 42.5 {
		t.Fatalf("Now() = %v", got)
	}
	tr.InstantEvent(CatSched, "cad:throttle", 1, 8, "limit 16->8")
	ev := tr.Events()
	if len(ev) != 1 || ev[0].TS != 42.5 || ev[0].Kind != Instant {
		t.Fatalf("events = %+v", ev)
	}
}

func TestRingWraparoundCountsDrops(t *testing.T) {
	tr := New(func() float64 { return 0 }, Options{Shards: 1, ShardCapacity: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(Event{TS: float64(i), Node: 0, Task: i})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", tr.Drops())
	}
	ev := tr.Events()
	// The newest four survive, oldest-first.
	want := []int{6, 7, 8, 9}
	for i, e := range ev {
		if e.Task != want[i] {
			t.Fatalf("retained tasks = %v at %d, want %v", e.Task, i, want)
		}
	}
}

func TestEventsMergeSortedAcrossShards(t *testing.T) {
	tr := New(func() float64 { return 0 }, Options{Shards: 4, ShardCapacity: 16})
	// Interleave nodes so shards fill out of global order.
	for i := 9; i >= 0; i-- {
		tr.Emit(Event{TS: float64(i), Node: i % 4, Task: i})
	}
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("events not sorted by TS: %v after %v", ev[i].TS, ev[i-1].TS)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(func() float64 { return 0 }, Options{Shards: 8, ShardCapacity: 4096})
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.TaskSpan("s", i, 0, w, float64(i), 1, 1, "")
			}
		}()
	}
	wg.Wait()
	if tr.Len()+int(tr.Drops()) != workers*per {
		t.Fatalf("retained %d + dropped %d != emitted %d",
			tr.Len(), tr.Drops(), workers*per)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{TS: 0, Dur: 10, Kind: Span, Cat: CatJob, Name: "groupby", Node: -1, Peer: -1, Task: -1},
		{TS: 0.5, Dur: 2, Kind: Span, Cat: CatTask, Name: "task", Node: 3, Peer: -1,
			Stage: "map/0", Task: 7, Attempt: 1, Bytes: 1e6, Detail: "failed"},
		{TS: 3, Dur: 0.25, Kind: Span, Cat: CatFetch, Name: "fetch", Node: 2, Peer: 5,
			Stage: "shuffle/0", Task: 2, Bytes: 4e5},
		{TS: 4, Kind: Instant, Cat: CatSched, Name: "elb:pause", Node: 1, Peer: -1,
			Task: -1, Bytes: 9e8, Detail: "load=9e8 avg=6e8"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\nin  %+v\nout %+v", in, out)
	}
	// Read() must sniff JSONL.
	sniffed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, sniffed) {
		t.Fatal("Read() failed to sniff JSONL")
	}
}
